package wwt_test

import (
	"path/filepath"
	"strings"
	"testing"

	"wwt"
	"wwt/internal/extract"
	"wwt/internal/index"
	"wwt/internal/inference"
	"wwt/internal/wtable"
)

func smallCorpus(t *testing.T) []*wtable.Table {
	t.Helper()
	pages := map[string]string{
		"http://a.example/currencies": `<html><head><title>Currencies of the world</title></head><body>
<h1>World currencies by country</h1><p>This article lists currencies of the world.</p>
<table><tr><th>Country</th><th>Currency</th></tr>
<tr><td>France</td><td>Euro</td></tr><tr><td>Japan</td><td>Yen</td></tr>
<tr><td>India</td><td>Indian rupee</td></tr><tr><td>Brazil</td><td>Real</td></tr></table>
</body></html>`,
		"http://b.example/bare": `<html><head><title>Data page</title></head><body>
<table><tr><td>France</td><td>Euro</td></tr><tr><td>Japan</td><td>Yen</td></tr>
<tr><td>India</td><td>Indian rupee</td></tr><tr><td>Brazil</td><td>Real</td></tr></table>
</body></html>`,
		"http://c.example/reserves": `<html><head><title>Forest reserves</title></head><body>
<p>Forest reserves under the forestry act.</p>
<table><tr><th>ID</th><th>Name</th><th>Area</th></tr>
<tr><td>7</td><td>Shakespeare Hills</td><td>2236</td></tr>
<tr><td>9</td><td>Plains Creek</td><td>880</td></tr></table>
</body></html>`,
	}
	var tables []*wtable.Table
	for url, html := range pages {
		tables = append(tables, extract.Page(url, html, extract.NewOptions())...)
	}
	if len(tables) != 3 {
		t.Fatalf("expected 3 tables, got %d", len(tables))
	}
	return tables
}

func TestEngineAnswerEndToEnd(t *testing.T) {
	eng, err := wwt.NewEngine(smallCorpus(t), nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Answer(wwt.Query{Columns: []string{"country", "currency"}})
	if err != nil {
		t.Fatal(err)
	}
	defer res.Release()
	if len(res.Answer.Rows) < 4 {
		t.Fatalf("answer rows = %d, want >= 4", len(res.Answer.Rows))
	}
	// France-Euro must be present with both columns populated.
	found := false
	for _, row := range res.Answer.Rows {
		if row.Cells[0] == "France" && row.Cells[1] == "Euro" {
			found = true
		}
	}
	if !found {
		t.Errorf("France/Euro row missing: %v", res.Answer.Rows)
	}
	// The reserves table must not contribute.
	for _, src := range res.Answer.Sources {
		if strings.Contains(src, "reserves") {
			t.Errorf("irrelevant table consolidated: %s", src)
		}
	}
	if res.Timings.Total() <= 0 {
		t.Error("timings not recorded")
	}
}

func TestEngineHeaderlessRecovery(t *testing.T) {
	eng, err := wwt.NewEngine(smallCorpus(t), nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Answer(wwt.Query{Columns: []string{"country", "currency"}})
	if err != nil {
		t.Fatal(err)
	}
	defer res.Release()
	// The bare-page headerless table shares full content with the headed
	// one; collective inference must mark it relevant.
	for ti, tb := range res.Tables {
		if strings.Contains(tb.ID, "bare") && !res.Labeling.Relevant(ti) {
			t.Errorf("headerless table not recovered")
		}
	}
	// Support for merged rows should therefore be 2.
	for _, row := range res.Answer.Rows {
		if row.Cells[0] == "Japan" && row.Support != 2 {
			t.Errorf("Japan support = %d, want 2", row.Support)
		}
	}
}

func TestEngineEmptyQuery(t *testing.T) {
	eng, err := wwt.NewEngine(smallCorpus(t), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Answer(wwt.Query{}); err == nil { //wwt:retained — rejected query, no Result to release
		t.Error("empty query accepted")
	}
	if _, err := eng.Answer(wwt.Query{Columns: []string{"the of a"}}); err == nil { //wwt:retained — rejected query, no Result to release
		t.Error("stopword-only query accepted")
	}
}

func TestEngineNoMatches(t *testing.T) {
	eng, err := wwt.NewEngine(smallCorpus(t), nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Answer(wwt.Query{Columns: []string{"zzzunknown", "qqqabsent"}})
	if err != nil {
		t.Fatal(err)
	}
	defer res.Release()
	if len(res.Tables) != 0 || len(res.Answer.Rows) != 0 {
		t.Errorf("expected empty result, got %d tables %d rows", len(res.Tables), len(res.Answer.Rows))
	}
}

func TestEngineAlgorithmOption(t *testing.T) {
	for _, alg := range inference.Algorithms {
		opts := wwt.DefaultOptions()
		opts.Algorithm = alg
		eng, err := wwt.NewEngine(smallCorpus(t), &opts)
		if err != nil {
			t.Fatal(err)
		}
		res, err := eng.Answer(wwt.Query{Columns: []string{"country", "currency"}})
		if err != nil {
			t.Errorf("%s: %v", alg, err)
			continue
		}
		res.Release()
	}
}

func TestEngineSecondProbeToggle(t *testing.T) {
	opts := wwt.DefaultOptions()
	opts.SecondProbe = false
	eng, err := wwt.NewEngine(smallCorpus(t), &opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Answer(wwt.Query{Columns: []string{"country", "currency"}})
	if err != nil {
		t.Fatal(err)
	}
	defer res.Release()
	if res.UsedProbe2 {
		t.Error("probe2 used despite being disabled")
	}
	if res.Timings.Probe2 != 0 {
		t.Error("probe2 timing recorded despite being disabled")
	}
}

func TestEnginePersistenceRoundTrip(t *testing.T) {
	tables := smallCorpus(t)
	eng, err := wwt.NewEngine(tables, nil)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := eng.Index.Save(filepath.Join(dir, "ix.gob")); err != nil {
		t.Fatal(err)
	}
	if err := eng.Store.Save(filepath.Join(dir, "st.gob")); err != nil {
		t.Fatal(err)
	}
	ix, err := index.Load(filepath.Join(dir, "ix.gob"))
	if err != nil {
		t.Fatal(err)
	}
	st, err := index.LoadStore(filepath.Join(dir, "st.gob"))
	if err != nil {
		t.Fatal(err)
	}
	eng2 := wwt.NewEngineFrom(ix, st, nil)
	a, err := eng.Answer(wwt.Query{Columns: []string{"country", "currency"}})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Release()
	b, err := eng2.Answer(wwt.Query{Columns: []string{"country", "currency"}})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Release()
	if len(a.Answer.Rows) != len(b.Answer.Rows) {
		t.Errorf("answers differ after persistence round trip: %d vs %d rows",
			len(a.Answer.Rows), len(b.Answer.Rows))
	}
}

func TestEngineDeterministic(t *testing.T) {
	eng, err := wwt.NewEngine(smallCorpus(t), nil)
	if err != nil {
		t.Fatal(err)
	}
	q := wwt.Query{Columns: []string{"country", "currency"}}
	a, err := eng.Answer(q)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Release()
	b, err := eng.Answer(q)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Release()
	if len(a.Answer.Rows) != len(b.Answer.Rows) {
		t.Fatal("row counts differ between runs")
	}
	for i := range a.Answer.Rows {
		for c := range a.Answer.Rows[i].Cells {
			if a.Answer.Rows[i].Cells[c] != b.Answer.Rows[i].Cells[c] {
				t.Fatalf("row %d differs between identical runs", i)
			}
		}
	}
}

func TestEngineDuplicateTableIDs(t *testing.T) {
	tables := smallCorpus(t)
	tables = append(tables, tables[0])
	if _, err := wwt.NewEngine(tables, nil); err == nil {
		t.Error("duplicate table IDs accepted")
	}
}
