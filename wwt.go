// Package wwt is the public API of this reproduction of "Answering Table
// Queries on the Web using Column Keywords" (Pimplikar & Sarawagi, VLDB
// 2012). It wires the full WWT pipeline of Fig. 2: a boosted multi-field
// index over extracted web tables, the two-stage index probe of §2.2.1,
// the graphical-model column mapper of §3 with the inference algorithms of
// §4, and the consolidator/ranker of §2.2.3.
//
// Typical use:
//
//	tables := extract.Page(url, html, extract.NewOptions())   // offline
//	eng, err := wwt.NewEngine(tables, nil)                    // index + store
//	res, err := eng.Answer(wwt.Query{Columns: []string{
//	    "name of explorers", "nationality", "areas explored"}})
//	for _, row := range res.Answer.Rows { ... }
package wwt

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"time"

	"wwt/internal/consolidate"
	"wwt/internal/core"
	"wwt/internal/index"
	"wwt/internal/inference"
	"wwt/internal/text"
	"wwt/internal/wtable"
)

// Query is a column-keyword query: one keyword set per desired answer
// column.
type Query struct {
	Columns []string
}

// Options configures an Engine. The zero value is not useful; start from
// DefaultOptions.
type Options struct {
	// Params are the column-mapper parameters (weights, reliabilities...).
	Params core.Params
	// Algorithm selects the collective inference method (§4). The paper's
	// recommendation — and the default — is the table-centric algorithm.
	Algorithm inference.Algorithm
	// ProbeK is the number of candidates fetched per index probe.
	ProbeK int
	// SecondProbe enables the content-overlap re-probe of §2.2.1.
	SecondProbe bool
	// SecondProbeRows is the number of random rows sampled from confident
	// tables for the second probe (10 in the paper).
	SecondProbeRows int
	// MinConfidentRelevance gates which stage-1 tables seed the second
	// probe ("very high relevance score").
	MinConfidentRelevance float64
	// Consolidate options.
	Consolidate consolidate.Options
}

// DefaultOptions returns the paper-faithful configuration.
func DefaultOptions() Options {
	return Options{
		Params:                core.DefaultParams(),
		Algorithm:             inference.TableCentric,
		ProbeK:                40,
		SecondProbe:           true,
		SecondProbeRows:       10,
		MinConfidentRelevance: 0.75,
		Consolidate:           consolidate.NewOptions(),
	}
}

// Timings is the per-stage running time split of Fig. 7.
type Timings struct {
	Probe1      time.Duration
	Read1       time.Duration
	Probe2      time.Duration
	Read2       time.Duration
	ColumnMap   time.Duration
	Consolidate time.Duration
}

// Total sums all stages.
func (t Timings) Total() time.Duration {
	return t.Probe1 + t.Read1 + t.Probe2 + t.Read2 + t.ColumnMap + t.Consolidate
}

// Result is the full outcome of answering a query.
type Result struct {
	Answer     *consolidate.Answer
	Labeling   core.Labeling
	Tables     []*wtable.Table // candidate tables, in model order
	Model      *core.Model
	UsedProbe2 bool
	Timings    Timings
}

// Engine answers column-keyword queries over an indexed table corpus.
type Engine struct {
	Index *index.Index
	Store *index.Store
	Opts  Options
}

// NewEngine indexes the given tables and returns a ready engine. opts may
// be nil for DefaultOptions.
func NewEngine(tables []*wtable.Table, opts *Options) (*Engine, error) {
	o := DefaultOptions()
	if opts != nil {
		o = *opts
	}
	ix, err := index.Build(tables)
	if err != nil {
		return nil, fmt.Errorf("wwt: %w", err)
	}
	st := index.NewStore()
	for _, t := range tables {
		if err := st.Add(t); err != nil {
			return nil, fmt.Errorf("wwt: %w", err)
		}
	}
	return &Engine{Index: ix, Store: st, Opts: o}, nil
}

// NewEngineFrom wraps an existing index and store (e.g. loaded from disk).
func NewEngineFrom(ix *index.Index, st *index.Store, opts *Options) *Engine {
	o := DefaultOptions()
	if opts != nil {
		o = *opts
	}
	return &Engine{Index: ix, Store: st, Opts: o}
}

// PMISource exposes the engine's index as the co-occurrence source for the
// PMI² feature.
func (e *Engine) PMISource() core.PMISource { return indexPMI{e.Index} }

type indexPMI struct{ ix *index.Index }

func (s indexPMI) HeaderContextDocs(tokens []string) []int32 {
	return s.ix.DocSet(tokens, index.FieldHeader, index.FieldContext)
}

func (s indexPMI) ContentDocs(tokens []string) []int32 {
	return s.ix.DocSet(tokens, index.FieldContent)
}

// Candidates runs the two-stage index probe of §2.2.1 and returns the
// candidate tables (deduplicated, first-probe order first). It reports
// whether the second probe fired and accumulates stage timings.
func (e *Engine) Candidates(q Query, tm *Timings) ([]*wtable.Table, bool, error) {
	if len(q.Columns) == 0 {
		return nil, false, fmt.Errorf("wwt: empty query")
	}
	var tokens []string
	for _, col := range q.Columns {
		tokens = append(tokens, text.Normalize(col)...)
	}
	if len(tokens) == 0 {
		return nil, false, fmt.Errorf("wwt: query has no content words")
	}
	start := time.Now()
	hits := e.Index.Search(tokens, e.Opts.ProbeK)
	if tm != nil {
		tm.Probe1 = time.Since(start)
	}
	start = time.Now()
	tables := e.readTables(hits)
	if tm != nil {
		tm.Read1 = time.Since(start)
	}
	if !e.Opts.SecondProbe || len(tables) == 0 {
		return tables, false, nil
	}

	// Stage 1 mapping to find confident tables.
	builder := &core.Builder{Params: e.Opts.Params, Stats: e.Index, PMI: e.PMISource()}
	m := builder.Build(q.Columns, tables)
	l := inference.SolveIndependent(m)
	type scored struct {
		ti  int
		rel float64
	}
	var confident []scored
	for ti := range tables {
		if l.Relevant(ti) && m.Rel[ti] >= e.Opts.MinConfidentRelevance {
			confident = append(confident, scored{ti, m.Rel[ti]})
		}
	}
	if len(confident) == 0 {
		return tables, false, nil
	}
	// Top-two by relevance.
	for i := 0; i < len(confident); i++ {
		for j := i + 1; j < len(confident); j++ {
			if confident[j].rel > confident[i].rel {
				confident[i], confident[j] = confident[j], confident[i]
			}
		}
	}
	if len(confident) > 2 {
		confident = confident[:2]
	}
	// Sample rows deterministically per query.
	h := fnv.New64a()
	for _, c := range q.Columns {
		h.Write([]byte(c))
	}
	rng := rand.New(rand.NewSource(int64(h.Sum64())))
	sample := tokens
	for _, sc := range confident {
		tb := tables[sc.ti]
		rows := tb.NumBodyRows()
		take := e.Opts.SecondProbeRows
		if take > rows {
			take = rows
		}
		for _, r := range rng.Perm(rows)[:take] {
			for c := 0; c < tb.NumCols(); c++ {
				sample = append(sample, text.Normalize(tb.Body(r, c))...)
			}
		}
	}
	start = time.Now()
	hits2 := e.Index.Search(sample, e.Opts.ProbeK)
	if tm != nil {
		tm.Probe2 = time.Since(start)
	}
	start = time.Now()
	seen := make(map[string]bool, len(tables))
	for _, t := range tables {
		seen[t.ID] = true
	}
	for _, t := range e.readTables(hits2) {
		if !seen[t.ID] {
			seen[t.ID] = true
			tables = append(tables, t)
		}
	}
	if tm != nil {
		tm.Read2 = time.Since(start)
	}
	return tables, true, nil
}

func (e *Engine) readTables(hits []index.Hit) []*wtable.Table {
	out := make([]*wtable.Table, 0, len(hits))
	for _, h := range hits {
		if t, ok := e.Store.Get(h.ID); ok {
			out = append(out, t)
		}
	}
	return out
}

// Answer runs the full pipeline: probes, column mapping with the
// configured inference algorithm, and consolidation.
func (e *Engine) Answer(q Query) (*Result, error) {
	res := &Result{}
	tables, usedProbe2, err := e.Candidates(q, &res.Timings)
	if err != nil {
		return nil, err
	}
	res.Tables = tables
	res.UsedProbe2 = usedProbe2

	start := time.Now()
	builder := &core.Builder{Params: e.Opts.Params, Stats: e.Index, PMI: e.PMISource()}
	m := builder.Build(q.Columns, tables)
	res.Model = m
	res.Labeling = inference.Solve(m, e.Opts.Algorithm)
	res.Timings.ColumnMap = time.Since(start)

	start = time.Now()
	res.Answer = consolidate.Consolidate(len(q.Columns), tables, res.Labeling, m.Conf, m.Rel, e.Opts.Consolidate)
	res.Timings.Consolidate = time.Since(start)
	return res, nil
}

// MapColumns runs only the column-mapping stage over caller-supplied
// candidates — the §3 task in isolation, used by the experiments.
func (e *Engine) MapColumns(q Query, tables []*wtable.Table) (*core.Model, core.Labeling) {
	builder := &core.Builder{Params: e.Opts.Params, Stats: e.Index, PMI: e.PMISource()}
	m := builder.Build(q.Columns, tables)
	return m, inference.Solve(m, e.Opts.Algorithm)
}
