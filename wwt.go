package wwt

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"wwt/internal/consolidate"
	"wwt/internal/core"
	"wwt/internal/index"
	"wwt/internal/inference"
	"wwt/internal/plan"
	"wwt/internal/text"
	"wwt/internal/wtable"
)

// Query is a column-keyword query: one keyword set per desired answer
// column.
type Query struct {
	Columns []string
}

// Options configures an Engine. The zero value is not useful; start from
// DefaultOptions.
type Options struct {
	// Params are the column-mapper parameters (weights, reliabilities...).
	// They are fixed at engine construction: the engine's cross-query
	// caches (table views, pair similarities) bake the view- and
	// pair-affecting fields in, so mutating Opts.Params on a live engine
	// yields stale results — build a new engine to change params.
	Params core.Params
	// Algorithm selects the collective inference method (§4). The paper's
	// recommendation — and the default — is the table-centric algorithm.
	Algorithm inference.Algorithm
	// ProbeK is the number of candidates fetched per index probe.
	ProbeK int
	// SecondProbe enables the content-overlap re-probe of §2.2.1.
	SecondProbe bool
	// SecondProbeRows is the number of random rows sampled from confident
	// tables for the second probe (10 in the paper).
	SecondProbeRows int
	// MinConfidentRelevance gates which stage-1 tables seed the second
	// probe ("very high relevance score").
	MinConfidentRelevance float64
	// Consolidate options.
	Consolidate consolidate.Options
	// Planner configures the adaptive query planner's levers. The zero
	// value disables every lever: the pipeline runs exactly as if the
	// planner did not exist (pinned by TestPlannerOffBitIdentical). Cost
	// calibration itself always runs — it is observability-only and never
	// changes an answer.
	Planner PlannerOptions
}

// PlannerOptions are the adaptive planner's levers (see internal/plan for
// the cost model). Each lever is individually togglable and off by
// default; with all levers off the query path is bit-identical to a
// planner-less engine.
type PlannerOptions struct {
	// ElideProbe2 skips the second content-overlap probe (and its read)
	// when the stage-1 mapping confidence clears ElideConfidence: every
	// query column is mapped by some confident relevant table with a
	// stage-1 max-marginal of at least the threshold. Elision is recorded
	// in Result.Probe2Elided.
	ElideProbe2 bool
	// ElideConfidence is the stage-1 confidence threshold for ElideProbe2
	// (0 means DefaultElideConfidence). Raising it makes elision rarer and
	// safer. Stage-1 confidences are softmaxed max-marginals, so their
	// ceiling depends on the query width and potential scale; the default
	// sits above the ceiling observed on the evaluation corpus, making
	// elision answer-preserving there by construction. Lowering the
	// threshold trades recall for latency: an elided answer can lose rows
	// that only second-probe tables contribute, but never gains rows the
	// full pipeline would not produce.
	ElideConfidence float64
	// DeadlineDegrade degrades a query that is about to overrun its
	// context deadline — capping candidate tables at DegradeMaxTables and
	// falling back to independent inference — instead of letting it abort
	// with DeadlineExceeded. Degradation is recorded in Result.Degraded.
	// It requires a calibrated estimator; cold engines never degrade.
	DeadlineDegrade bool
	// DegradeMaxTables caps the candidate-table count of a degraded query
	// (0 means DefaultDegradeMaxTables).
	DegradeMaxTables int
	// DegradeHeadroom scales the estimated remaining cost before
	// comparing it to the remaining deadline budget (0 means
	// DefaultDegradeHeadroom; larger degrades earlier).
	DegradeHeadroom float64
}

// Planner lever defaults (used when the corresponding PlannerOptions
// field is zero).
const (
	DefaultElideConfidence  = 0.98
	DefaultDegradeMaxTables = 8
	DefaultDegradeHeadroom  = 1.5
)

// elideConfidence resolves the effective elision threshold.
func (p PlannerOptions) elideConfidence() float64 {
	if p.ElideConfidence > 0 {
		return p.ElideConfidence
	}
	return DefaultElideConfidence
}

// degradeMaxTables resolves the effective degraded-table cap.
func (p PlannerOptions) degradeMaxTables() int {
	if p.DegradeMaxTables > 0 {
		return p.DegradeMaxTables
	}
	return DefaultDegradeMaxTables
}

// degradeHeadroom resolves the effective degradation headroom factor.
func (p PlannerOptions) degradeHeadroom() float64 {
	if p.DegradeHeadroom > 0 {
		return p.DegradeHeadroom
	}
	return DefaultDegradeHeadroom
}

// Schedule selects the dispatch order of batch members on the worker
// pool. Every schedule fills the same output slots with the same
// bit-identical per-member results — ordering only changes *when* each
// member runs, never what it computes (pinned by
// TestAnswerBatchSchedulingEquivalence).
type Schedule int

const (
	// ScheduleFIFO dispatches members in submission order (the default).
	ScheduleFIFO Schedule = iota
	// ScheduleSJF dispatches members in ascending estimated cost
	// (shortest job first), stable tie-break on submission index, so one
	// posting-heavy member cannot inflate every co-batched member's
	// latency. On a cold estimator all estimates are 0 and SJF degenerates
	// to FIFO.
	ScheduleSJF
	// ScheduleDeadline dispatches members in ascending slack (per-member
	// deadline budget minus estimated cost), promoting the members
	// closest to blowing their deadline. With a uniform budget this is
	// descending estimated cost (longest first).
	ScheduleDeadline
)

// String names the schedule as accepted by ParseSchedule.
func (s Schedule) String() string {
	switch s {
	case ScheduleFIFO:
		return "fifo"
	case ScheduleSJF:
		return "sjf"
	case ScheduleDeadline:
		return "deadline"
	}
	return fmt.Sprintf("Schedule(%d)", int(s))
}

// ParseSchedule parses a schedule name ("fifo", "sjf", "deadline"; ""
// means FIFO).
func ParseSchedule(s string) (Schedule, error) {
	switch s {
	case "", "fifo":
		return ScheduleFIFO, nil
	case "sjf":
		return ScheduleSJF, nil
	case "deadline":
		return ScheduleDeadline, nil
	}
	return ScheduleFIFO, fmt.Errorf("wwt: unknown schedule %q (want fifo, sjf or deadline)", s)
}

// DefaultOptions returns the paper-faithful configuration.
func DefaultOptions() Options {
	return Options{
		Params:                core.DefaultParams(),
		Algorithm:             inference.TableCentric,
		ProbeK:                40,
		SecondProbe:           true,
		SecondProbeRows:       10,
		MinConfidentRelevance: 0.75,
		Consolidate:           consolidate.NewOptions(),
	}
}

// Timings is the per-stage running time split of Fig. 7: one field per
// pipeline stage. ColumnMap covers only the model build; Infer is the
// collective inference solve, reported separately.
//
// A stage added here must also be added to fields (and timingsStageNames)
// below — that list is the single enumeration Add, Total and Stages
// iterate, and TestTimingsFieldsComplete pins it against the struct by
// reflection, so a new stage can't be silently dropped from aggregation.
type Timings struct {
	Probe1      time.Duration
	Read1       time.Duration
	Probe2      time.Duration
	Read2       time.Duration
	ColumnMap   time.Duration
	Infer       time.Duration
	Consolidate time.Duration
}

// timingsStageNames are the pipeline names of the Timings fields, aligned
// index-for-index with fields.
var timingsStageNames = []string{
	"probe1", "read1", "probe2", "read2", "colmap", "infer", "consolidate",
}

// fields returns pointers to every stage duration in pipeline order — the
// one place the stage set is enumerated.
func (t *Timings) fields() []*time.Duration {
	return []*time.Duration{
		&t.Probe1, &t.Read1, &t.Probe2, &t.Read2, &t.ColumnMap, &t.Infer, &t.Consolidate,
	}
}

// Add accumulates o into t, field by field.
func (t *Timings) Add(o Timings) {
	tf, of := t.fields(), o.fields()
	for i := range tf {
		*tf[i] += *of[i]
	}
}

// Total sums all stages.
func (t Timings) Total() time.Duration {
	var sum time.Duration
	for _, d := range t.fields() {
		sum += *d
	}
	return sum
}

// StageTiming is one named stage's duration, as enumerated by Stages.
type StageTiming struct {
	Name string
	D    time.Duration
}

// Stages lists every stage with its pipeline name, in pipeline order.
// Consumers that aggregate or export per-stage time (batch accounting,
// the serving daemon's /metrics) iterate this instead of hand-copying the
// field list.
func (t Timings) Stages() []StageTiming {
	f := t.fields()
	out := make([]StageTiming, len(f))
	for i := range f {
		out[i] = StageTiming{timingsStageNames[i], *f[i]}
	}
	return out
}

// Result is the full outcome of answering a query.
type Result struct {
	Answer     *consolidate.Answer
	Labeling   core.Labeling
	Tables     []*wtable.Table // candidate tables, in model order
	Model      *core.Model
	UsedProbe2 bool
	// Probe2Elided reports that the planner skipped the second probe
	// because the stage-1 mapping already cleared the confidence
	// threshold (UsedProbe2 is then false).
	Probe2Elided bool
	// Degraded reports that the planner degraded this query (capped
	// candidate tables, independent inference) to beat its deadline
	// instead of aborting with DeadlineExceeded.
	Degraded bool
	Timings  Timings

	// The pooled arena backing Model, owned by this result until Release.
	engine  *Engine
	scratch *QueryScratch
}

// Release returns the result's pooled per-query arena to the engine so a
// later Answer can reuse it. The Model is scratch-backed and is nilled
// out here; the Answer rows, Labeling, Tables and Timings own their
// storage and stay valid. Release is optional — an unreleased arena is
// simply garbage-collected with the result — and must be called at most
// once, after which the Result's Model must not be used.
func (r *Result) Release() {
	if r.scratch == nil || r.engine == nil {
		return
	}
	s, e := r.scratch, r.engine
	r.scratch, r.engine = nil, nil
	r.Model = nil
	e.putScratch(s)
}

// Engine answers column-keyword queries over an indexed table corpus. An
// engine is immutable after construction and safe for concurrent Answer /
// Candidates / MapColumns calls: the hot path runs on a frozen flat
// searcher, the PMI doc-set and table-view caches are concurrency-safe,
// and every in-flight query draws its own scratch arena from the pool.
type Engine struct {
	// Index is the mutable build-time index. It is nil for engines opened
	// from a flat on-disk index (NewEngineFromSharded), whose statistics
	// come from the sharded searcher instead.
	Index *index.Index
	Store *index.Store
	Opts  Options

	searcher *index.Searcher
	sharded  *index.ShardedSearcher
	multi    *index.MultiSearcher
	stats    core.CorpusStats
	docsets  docSetCache
	views    *core.ViewCache
	pairs    *core.PairSimCache
	norm     *text.NormCache
	scratch  sync.Pool // *QueryScratch

	// Adaptive-planner state: the online-calibrated cost estimator (see
	// internal/plan) plus cumulative lever counters. planner is nil only
	// on zero-value engines, where every planner path is skipped.
	planner      *plan.Estimator
	planElided   atomic.Uint64
	planDegraded atomic.Uint64

	// Probe-pruning counters: cumulative block-max and shard-pruning
	// outcomes across every index probe this engine ran (both pipeline
	// probes; see index.ProbeStats). Exported through PlanStats.
	probeBlocksTotal   atomic.Int64
	probeBlocksSkipped atomic.Int64
	probeShardsPruned  atomic.Uint64
}

// docSetSource is the doc-set probe surface shared by Index, Searcher and
// ShardedSearcher.
type docSetSource interface {
	DocSet(tokens []string, fields ...index.Field) []int32
}

// docSetCache is a doc-set source with hit/miss counters — the engine's
// PMI cache, single-shard or sharded.
type docSetCache interface {
	docSetSource
	Stats() (hits, misses uint64)
}

// NewEngine indexes the given tables and returns a ready engine. opts may
// be nil for DefaultOptions.
func NewEngine(tables []*wtable.Table, opts *Options) (*Engine, error) {
	o := DefaultOptions()
	if opts != nil {
		o = *opts
	}
	ix, err := index.Build(tables)
	if err != nil {
		return nil, fmt.Errorf("wwt: %w", err)
	}
	st := index.NewStore()
	for _, t := range tables {
		if err := st.Add(t); err != nil {
			return nil, fmt.Errorf("wwt: %w", err)
		}
	}
	return NewEngineFrom(ix, st, &o), nil
}

// NewEngineFrom wraps an existing index and store (e.g. loaded from disk),
// freezing the index into its flat search form. The index must not be
// mutated afterwards.
func NewEngineFrom(ix *index.Index, st *index.Store, opts *Options) *Engine {
	o := DefaultOptions()
	if opts != nil {
		o = *opts
	}
	s := index.NewSearcher(ix)
	return &Engine{
		Index:    ix,
		Store:    st,
		Opts:     o,
		searcher: s,
		stats:    ix,
		docsets:  index.NewDocSetCache(s, 0),
		views:    core.NewViewCache(),
		pairs:    core.NewPairSimCache(0),
		norm:     text.NewNormCache(0),
		planner:  plan.NewEstimator(len(inference.Algorithms), plan.DefaultAlpha),
	}
}

// NewEngineFromSharded wraps an opened flat sharded index (OpenSharded)
// and a table store. The engine has no mutable Index (Engine.Index is
// nil): corpus statistics, probes and PMI doc sets all come from the
// sharded searcher, whose arrays alias the file mappings — the index
// directory must outlive the engine, and the searcher must not be Closed
// while the engine is in use. The PMI doc-set cache is partitioned per
// index shard; per-shard counters surface through CacheStats.
func NewEngineFromSharded(ss *index.ShardedSearcher, st *index.Store, opts *Options) *Engine {
	o := DefaultOptions()
	if opts != nil {
		o = *opts
	}
	return &Engine{
		Store:   st,
		Opts:    o,
		sharded: ss,
		stats:   ss,
		docsets: index.NewShardedDocSetCache(ss, ss.Shards(), 0),
		views:   core.NewViewCache(),
		pairs:   core.NewPairSimCache(0),
		norm:    text.NewNormCache(0),
		planner: plan.NewEstimator(len(inference.Algorithms), plan.DefaultAlpha),
	}
}

// NewEngineFromMulti wraps an opened multi-segment snapshot
// (index.OpenMultiSnapshot) and the union table store. Like
// NewEngineFromSharded, the engine has no mutable Index; statistics,
// probes and PMI doc sets come from the multi searcher, whose arrays
// alias the segment mappings — the snapshot must not be Closed while the
// engine is in use. LiveEngine builds one of these per committed
// generation and hot-swaps between them.
func NewEngineFromMulti(ms *index.MultiSearcher, st *index.Store, opts *Options) *Engine {
	o := DefaultOptions()
	if opts != nil {
		o = *opts
	}
	return &Engine{
		Store:   st,
		Opts:    o,
		multi:   ms,
		stats:   ms,
		docsets: index.NewShardedDocSetCache(ms, ms.Shards(), 0),
		views:   core.NewViewCache(),
		pairs:   core.NewPairSimCache(0),
		norm:    text.NewNormCache(0),
		planner: plan.NewEstimator(len(inference.Algorithms), plan.DefaultAlpha),
	}
}

// Searcher returns the engine's frozen flat searcher (nil for sharded
// engines).
func (e *Engine) Searcher() *index.Searcher { return e.searcher }

// Multi returns the engine's multi-segment searcher (nil unless the
// engine was built by NewEngineFromMulti).
func (e *Engine) Multi() *index.MultiSearcher { return e.multi }

// Sharded returns the engine's sharded searcher (nil for single-shard
// engines).
func (e *Engine) Sharded() *index.ShardedSearcher { return e.sharded }

// Close releases the engine's file mappings, if it was opened from a flat
// on-disk index. The engine (and any strings or doc sets it returned) must
// not be used afterwards. Close is a no-op for in-memory engines.
func (e *Engine) Close() error {
	if e.multi != nil {
		return e.multi.Close()
	}
	if e.sharded != nil {
		return e.sharded.Close()
	}
	return nil
}

// search probes the sharded searcher when present, then the frozen
// single-shard searcher, falling back to the map-based scorer for
// zero-value engines constructed without a New* constructor. The probe's
// skip/prune counters are folded into the engine totals and returned for
// the planner's scanned-postings feature.
func (e *Engine) search(tokens []string, k int) ([]index.Hit, index.ProbeStats) {
	var hits []index.Hit
	var st index.ProbeStats
	switch {
	case e.multi != nil:
		hits, st = e.multi.SearchStats(tokens, k)
	case e.sharded != nil:
		hits, st = e.sharded.SearchStats(tokens, k)
	case e.searcher != nil:
		hits, st = e.searcher.SearchStats(tokens, k)
	default:
		return e.Index.Search(tokens, k), st
	}
	e.probeBlocksTotal.Add(st.BlocksTotal)
	e.probeBlocksSkipped.Add(st.BlocksSkipped)
	e.probeShardsPruned.Add(uint64(st.ShardsPruned))
	return hits, st
}

// builder returns a model builder wired to the engine's corpus statistics,
// cached PMI doc sets, shared table-view cache and cross-query pair-
// similarity cache.
func (e *Engine) builder() *core.Builder {
	stats := e.stats
	if stats == nil {
		stats = e.Index // zero-value engines
	}
	return &core.Builder{Params: e.Opts.Params, Stats: stats, PMI: e.PMISource(), Views: e.views, Pairs: e.pairs}
}

// CacheStats is a point-in-time snapshot of one cache's cumulative
// hit/miss counters.
type CacheStats struct {
	Hits, Misses uint64
}

// HitRate returns Hits/(Hits+Misses), or 0 before the first lookup.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// EngineCacheStats snapshots the four cross-query caches an engine owns:
// analyzed table views, per-pair column similarities, PMI doc sets, and
// normalized cell strings. The serving daemon's /metrics endpoint exports
// these; counters are cumulative since engine construction. For sharded
// engines, DocSetShards additionally breaks the doc-set counters down per
// cache shard (DocSets stays the aggregate).
type EngineCacheStats struct {
	Views     CacheStats
	PairSims  CacheStats
	DocSets   CacheStats
	NormCells CacheStats

	DocSetShards []CacheStats
}

// CacheStats snapshots the engine's cross-query cache counters. Safe for
// concurrent use; zero-value engines built without NewEngine/NewEngineFrom
// report all zeros.
func (e *Engine) CacheStats() EngineCacheStats {
	var st EngineCacheStats
	if e.views != nil {
		st.Views.Hits, st.Views.Misses = e.views.Stats()
	}
	if e.pairs != nil {
		st.PairSims.Hits, st.PairSims.Misses = e.pairs.Stats()
	}
	if e.docsets != nil {
		st.DocSets.Hits, st.DocSets.Misses = e.docsets.Stats()
		if sc, ok := e.docsets.(interface{ ShardStats() []index.CacheCounters }); ok {
			for _, c := range sc.ShardStats() {
				st.DocSetShards = append(st.DocSetShards, CacheStats{Hits: c.Hits, Misses: c.Misses})
			}
		}
	}
	if e.norm != nil {
		st.NormCells.Hits, st.NormCells.Misses = e.norm.Stats()
	}
	return st
}

// PlanStats is a point-in-time snapshot of the adaptive planner: how many
// queries each lever touched, and how well the cost model predicts.
type PlanStats struct {
	// Probe2Elided counts queries whose second probe the planner skipped.
	Probe2Elided uint64
	// Degraded counts queries the planner degraded to beat a deadline.
	Degraded uint64
	// CostError is the decayed mean relative error of the cost model's
	// own predictions (|estimated−actual|/actual; 0 until calibrated).
	CostError float64
	// Calibrated reports whether the estimator has observed enough
	// queries under the engine's algorithm for estimates to be meaningful.
	Calibrated bool
	// ProbeBlocksSkipped / ProbeBlocksTotal count posting blocks the
	// block-max skip pruned vs considered across every index probe (zero
	// on v1 indexes, which carry no block summaries).
	ProbeBlocksSkipped uint64
	ProbeBlocksTotal   uint64
	// ProbeShardsPruned counts shard scatters the floor-seeding pre-pass
	// pruned; ShardPrunes breaks the same counter down per index shard
	// (nil for single-shard engines).
	ProbeShardsPruned uint64
	ShardPrunes       []uint64
}

// PlanStats snapshots the planner counters and cost-model quality. Safe
// for concurrent use; zero-value engines report all zeros.
func (e *Engine) PlanStats() PlanStats {
	st := PlanStats{
		Probe2Elided:       e.planElided.Load(),
		Degraded:           e.planDegraded.Load(),
		ProbeBlocksSkipped: uint64(e.probeBlocksSkipped.Load()),
		ProbeBlocksTotal:   uint64(e.probeBlocksTotal.Load()),
		ProbeShardsPruned:  e.probeShardsPruned.Load(),
	}
	if e.sharded != nil {
		st.ShardPrunes = e.sharded.ShardPruneCounts()
	} else if e.multi != nil {
		st.ShardPrunes = e.multi.ShardPruneCounts()
	}
	if e.planner != nil {
		st.CostError = e.planner.ErrorRate()
		st.Calibrated = e.planner.Calibrated(int(e.Opts.Algorithm))
	}
	return st
}

// Planner returns the engine's cost estimator (nil on zero-value
// engines). Exposed so benchmarks and schedulers outside the package can
// pre-warm or inspect calibration; normal serving never needs it.
func (e *Engine) Planner() *plan.Estimator { return e.planner }

// termStats reads one token's planner features (document frequency, total
// posting entries) from whichever probe surface the engine runs on.
func (e *Engine) termStats(tok string) (df int32, postings int, ok bool) {
	if e.multi != nil {
		return e.multi.TermStats(tok)
	}
	if e.sharded != nil {
		return e.sharded.TermStats(tok)
	}
	if e.searcher != nil {
		return e.searcher.TermStats(tok)
	}
	if e.Index != nil {
		return e.Index.TermStats(tok)
	}
	return 0, 0, false
}

// EstimateCost predicts the wall time of answering q from the calibrated
// cost model and the index's term statistics — without running anything.
// A cold (or zero-value) engine returns 0: every query looks equal, and
// cost-ordered scheduling degenerates to FIFO. The estimate is what SJF
// batch scheduling sorts by; it is never used to change an answer.
func (e *Engine) EstimateCost(q Query) time.Duration {
	if e.planner == nil {
		return 0
	}
	seen := make(map[string]bool, 8)
	f := plan.Features{}
	dfSum := 0
	for _, col := range q.Columns {
		for _, tok := range text.Normalize(col) {
			if seen[tok] {
				continue
			}
			seen[tok] = true
			df, postings, ok := e.termStats(tok)
			if !ok {
				continue
			}
			f.Postings += postings
			dfSum += int(df)
		}
	}
	// Predicted candidate-table count: the probe returns at most ProbeK
	// tables, and no more than the number of documents matching any term.
	f.Tables = dfSum
	if k := e.Opts.ProbeK; k > 0 && f.Tables > k {
		f.Tables = k
	}
	return e.planner.EstimateQuery(f, int(e.Opts.Algorithm), e.Opts.SecondProbe)
}

// PMISource exposes the engine's index as the co-occurrence source for the
// PMI² feature. Doc-set probes go through the engine's LRU cache (sharded
// for sharded engines), so repeated H(Qℓ) and B(cell) intersections within
// and across queries are served from memory. The returned doc sets are the
// cache's backing slices: callers must treat them as read-only (mutating
// one corrupts the cache for every later query).
func (e *Engine) PMISource() core.PMISource {
	if e.docsets != nil {
		return pmiSource{src: e.docsets}
	}
	return pmiSource{src: e.Index} // zero-value engines: uncached
}

type pmiSource struct {
	src docSetSource
}

func (s pmiSource) HeaderContextDocs(tokens []string) []int32 {
	return s.src.DocSet(tokens, index.FieldHeader, index.FieldContext)
}

func (s pmiSource) ContentDocs(tokens []string) []int32 {
	return s.src.DocSet(tokens, index.FieldContent)
}

// sampleRows draws take distinct row indices from [0, rows) with a sparse
// partial Fisher–Yates: only the displaced slots of the virtual identity
// permutation are materialized, so the cost is O(take) draws and memory
// instead of the O(rows) array a full rng.Perm would allocate. The draw
// sequence deliberately differs from rng.Perm's (take Intn calls instead
// of rows), so sampled rows changed once when this replaced Perm — the
// sample stays deterministic per query seed.
func sampleRows(rng *rand.Rand, rows, take int) []int {
	out := make([]int, take)
	displaced := make(map[int]int, 2*take)
	for i := 0; i < take; i++ {
		j := i + rng.Intn(rows-i)
		vj, ok := displaced[j]
		if !ok {
			vj = j
		}
		vi, ok := displaced[i]
		if !ok {
			vi = i
		}
		out[i] = vj
		displaced[j] = vi
	}
	return out
}

func (e *Engine) readTables(hits []index.Hit) []*wtable.Table {
	out := make([]*wtable.Table, 0, len(hits))
	for _, h := range hits {
		if t, ok := e.Store.Get(h.ID); ok {
			out = append(out, t)
		}
	}
	return out
}

// MapColumns runs only the column-mapping stage over caller-supplied
// candidates — the §3 task in isolation, used by the experiments. The
// model is built with a private arena (safe to retain indefinitely). The
// engine's table-view cache retains every table passed here (and its
// analyzed view) for the engine's lifetime; callers streaming an unbounded
// sequence of fresh tables through a long-lived engine should construct a
// fresh engine per batch.
func (e *Engine) MapColumns(q Query, tables []*wtable.Table) (*core.Model, core.Labeling) {
	m := e.builder().Build(q.Columns, tables)
	return m, inference.Solve(m, e.Opts.Algorithm)
}
