// Package wwt is the public API of this reproduction of "Answering Table
// Queries on the Web using Column Keywords" (Pimplikar & Sarawagi, VLDB
// 2012). It wires the full WWT pipeline of Fig. 2: a boosted multi-field
// index over extracted web tables, the two-stage index probe of §2.2.1,
// the graphical-model column mapper of §3 with the inference algorithms of
// §4, and the consolidator/ranker of §2.2.3.
//
// Typical use:
//
//	tables := extract.Page(url, html, extract.NewOptions())   // offline
//	eng, err := wwt.NewEngine(tables, nil)                    // index + store
//	res, err := eng.Answer(wwt.Query{Columns: []string{
//	    "name of explorers", "nationality", "areas explored"}})
//	for _, row := range res.Answer.Rows { ... }
package wwt

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"time"

	"wwt/internal/consolidate"
	"wwt/internal/core"
	"wwt/internal/index"
	"wwt/internal/inference"
	"wwt/internal/text"
	"wwt/internal/wtable"
)

// Query is a column-keyword query: one keyword set per desired answer
// column.
type Query struct {
	Columns []string
}

// Options configures an Engine. The zero value is not useful; start from
// DefaultOptions.
type Options struct {
	// Params are the column-mapper parameters (weights, reliabilities...).
	// They are fixed at engine construction: the engine's cross-query
	// caches (table views, pair similarities) bake the view- and
	// pair-affecting fields in, so mutating Opts.Params on a live engine
	// yields stale results — build a new engine to change params.
	Params core.Params
	// Algorithm selects the collective inference method (§4). The paper's
	// recommendation — and the default — is the table-centric algorithm.
	Algorithm inference.Algorithm
	// ProbeK is the number of candidates fetched per index probe.
	ProbeK int
	// SecondProbe enables the content-overlap re-probe of §2.2.1.
	SecondProbe bool
	// SecondProbeRows is the number of random rows sampled from confident
	// tables for the second probe (10 in the paper).
	SecondProbeRows int
	// MinConfidentRelevance gates which stage-1 tables seed the second
	// probe ("very high relevance score").
	MinConfidentRelevance float64
	// Consolidate options.
	Consolidate consolidate.Options
}

// DefaultOptions returns the paper-faithful configuration.
func DefaultOptions() Options {
	return Options{
		Params:                core.DefaultParams(),
		Algorithm:             inference.TableCentric,
		ProbeK:                40,
		SecondProbe:           true,
		SecondProbeRows:       10,
		MinConfidentRelevance: 0.75,
		Consolidate:           consolidate.NewOptions(),
	}
}

// Timings is the per-stage running time split of Fig. 7.
type Timings struct {
	Probe1      time.Duration
	Read1       time.Duration
	Probe2      time.Duration
	Read2       time.Duration
	ColumnMap   time.Duration
	Consolidate time.Duration
}

// Total sums all stages.
func (t Timings) Total() time.Duration {
	return t.Probe1 + t.Read1 + t.Probe2 + t.Read2 + t.ColumnMap + t.Consolidate
}

// Result is the full outcome of answering a query.
type Result struct {
	Answer     *consolidate.Answer
	Labeling   core.Labeling
	Tables     []*wtable.Table // candidate tables, in model order
	Model      *core.Model
	UsedProbe2 bool
	Timings    Timings
}

// Engine answers column-keyword queries over an indexed table corpus. An
// engine is immutable after construction and safe for concurrent Answer /
// Candidates / MapColumns calls: the hot path runs on a frozen flat
// searcher, and the PMI doc-set and table-view caches are concurrency-safe.
type Engine struct {
	Index *index.Index
	Store *index.Store
	Opts  Options

	searcher *index.Searcher
	docsets  *index.DocSetCache
	views    *core.ViewCache
	pairs    *core.PairSimCache
}

// NewEngine indexes the given tables and returns a ready engine. opts may
// be nil for DefaultOptions.
func NewEngine(tables []*wtable.Table, opts *Options) (*Engine, error) {
	o := DefaultOptions()
	if opts != nil {
		o = *opts
	}
	ix, err := index.Build(tables)
	if err != nil {
		return nil, fmt.Errorf("wwt: %w", err)
	}
	st := index.NewStore()
	for _, t := range tables {
		if err := st.Add(t); err != nil {
			return nil, fmt.Errorf("wwt: %w", err)
		}
	}
	return NewEngineFrom(ix, st, &o), nil
}

// NewEngineFrom wraps an existing index and store (e.g. loaded from disk),
// freezing the index into its flat search form. The index must not be
// mutated afterwards.
func NewEngineFrom(ix *index.Index, st *index.Store, opts *Options) *Engine {
	o := DefaultOptions()
	if opts != nil {
		o = *opts
	}
	s := index.NewSearcher(ix)
	return &Engine{
		Index:    ix,
		Store:    st,
		Opts:     o,
		searcher: s,
		docsets:  index.NewDocSetCache(s, 0),
		views:    core.NewViewCache(),
		pairs:    core.NewPairSimCache(0),
	}
}

// Searcher returns the engine's frozen flat searcher.
func (e *Engine) Searcher() *index.Searcher { return e.searcher }

// search probes the frozen searcher, falling back to the map-based scorer
// for zero-value engines constructed without NewEngine/NewEngineFrom.
func (e *Engine) search(tokens []string, k int) []index.Hit {
	if e.searcher != nil {
		return e.searcher.Search(tokens, k)
	}
	return e.Index.Search(tokens, k)
}

// builder returns a model builder wired to the engine's corpus statistics,
// cached PMI doc sets, shared table-view cache and cross-query pair-
// similarity cache.
func (e *Engine) builder() *core.Builder {
	return &core.Builder{Params: e.Opts.Params, Stats: e.Index, PMI: e.PMISource(), Views: e.views, Pairs: e.pairs}
}

// PMISource exposes the engine's index as the co-occurrence source for the
// PMI² feature. Doc-set probes go through the engine's LRU cache, so
// repeated H(Qℓ) and B(cell) intersections within and across queries are
// served from memory. The returned doc sets are the cache's backing
// slices: callers must treat them as read-only (mutating one corrupts the
// cache for every later query).
func (e *Engine) PMISource() core.PMISource {
	return indexPMI{ix: e.Index, cache: e.docsets}
}

type indexPMI struct {
	ix    *index.Index
	cache *index.DocSetCache
}

func (s indexPMI) HeaderContextDocs(tokens []string) []int32 {
	if s.cache != nil {
		return s.cache.DocSet(tokens, index.FieldHeader, index.FieldContext)
	}
	return s.ix.DocSet(tokens, index.FieldHeader, index.FieldContext)
}

func (s indexPMI) ContentDocs(tokens []string) []int32 {
	if s.cache != nil {
		return s.cache.DocSet(tokens, index.FieldContent)
	}
	return s.ix.DocSet(tokens, index.FieldContent)
}

// Candidates runs the two-stage index probe of §2.2.1 and returns the
// candidate tables (deduplicated, first-probe order first). It reports
// whether the second probe fired and accumulates stage timings.
func (e *Engine) Candidates(q Query, tm *Timings) ([]*wtable.Table, bool, error) {
	if len(q.Columns) == 0 {
		return nil, false, fmt.Errorf("wwt: empty query")
	}
	var tokens []string
	for _, col := range q.Columns {
		tokens = append(tokens, text.Normalize(col)...)
	}
	if len(tokens) == 0 {
		return nil, false, fmt.Errorf("wwt: query has no content words")
	}
	start := time.Now()
	hits := e.search(tokens, e.Opts.ProbeK)
	if tm != nil {
		tm.Probe1 = time.Since(start)
	}
	start = time.Now()
	tables := e.readTables(hits)
	if tm != nil {
		tm.Read1 = time.Since(start)
	}
	if !e.Opts.SecondProbe || len(tables) == 0 {
		return tables, false, nil
	}

	// Stage 1 mapping to find confident tables.
	m := e.builder().Build(q.Columns, tables)
	l := inference.SolveIndependent(m)
	type scored struct {
		ti  int
		rel float64
	}
	// Top-two confident tables by relevance in one linear scan; strict
	// comparisons keep the earlier table on ties, matching the old stable
	// sort.
	confident := make([]scored, 0, 2)
	for ti := range tables {
		if !l.Relevant(ti) || m.Rel[ti] < e.Opts.MinConfidentRelevance {
			continue
		}
		s := scored{ti, m.Rel[ti]}
		switch {
		case len(confident) == 0:
			confident = append(confident, s)
		case s.rel > confident[0].rel:
			if len(confident) < 2 {
				confident = append(confident, confident[0])
			} else {
				confident[1] = confident[0]
			}
			confident[0] = s
		case len(confident) < 2:
			confident = append(confident, s)
		case s.rel > confident[1].rel:
			confident[1] = s
		}
	}
	if len(confident) == 0 {
		return tables, false, nil
	}
	// Sample rows deterministically per query.
	h := fnv.New64a()
	for _, c := range q.Columns {
		h.Write([]byte(c))
	}
	rng := rand.New(rand.NewSource(int64(h.Sum64())))
	// Probe-2 tokens get their own backing array — appending to an alias
	// of tokens could grow into (and later clobber) tokens' array — sized
	// for the sampled cells at a guessed couple of tokens each.
	takes := make([]int, len(confident))
	capHint := len(tokens)
	for i, sc := range confident {
		tb := tables[sc.ti]
		takes[i] = e.Opts.SecondProbeRows
		if rows := tb.NumBodyRows(); takes[i] > rows {
			takes[i] = rows
		}
		capHint += takes[i] * tb.NumCols() * 2
	}
	sample := make([]string, len(tokens), capHint)
	copy(sample, tokens)
	for i, sc := range confident {
		tb := tables[sc.ti]
		for _, r := range sampleRows(rng, tb.NumBodyRows(), takes[i]) {
			for c := 0; c < tb.NumCols(); c++ {
				sample = append(sample, text.Normalize(tb.Body(r, c))...)
			}
		}
	}
	start = time.Now()
	hits2 := e.search(sample, e.Opts.ProbeK)
	if tm != nil {
		tm.Probe2 = time.Since(start)
	}
	start = time.Now()
	seen := make(map[string]bool, len(tables))
	for _, t := range tables {
		seen[t.ID] = true
	}
	for _, t := range e.readTables(hits2) {
		if !seen[t.ID] {
			seen[t.ID] = true
			tables = append(tables, t)
		}
	}
	if tm != nil {
		tm.Read2 = time.Since(start)
	}
	return tables, true, nil
}

// sampleRows draws take distinct row indices from [0, rows) with a sparse
// partial Fisher–Yates: only the displaced slots of the virtual identity
// permutation are materialized, so the cost is O(take) draws and memory
// instead of the O(rows) array a full rng.Perm would allocate. The draw
// sequence deliberately differs from rng.Perm's (take Intn calls instead
// of rows), so sampled rows changed once when this replaced Perm — the
// sample stays deterministic per query seed.
func sampleRows(rng *rand.Rand, rows, take int) []int {
	out := make([]int, take)
	displaced := make(map[int]int, 2*take)
	for i := 0; i < take; i++ {
		j := i + rng.Intn(rows-i)
		vj, ok := displaced[j]
		if !ok {
			vj = j
		}
		vi, ok := displaced[i]
		if !ok {
			vi = i
		}
		out[i] = vj
		displaced[j] = vi
	}
	return out
}

func (e *Engine) readTables(hits []index.Hit) []*wtable.Table {
	out := make([]*wtable.Table, 0, len(hits))
	for _, h := range hits {
		if t, ok := e.Store.Get(h.ID); ok {
			out = append(out, t)
		}
	}
	return out
}

// Answer runs the full pipeline: probes, column mapping with the
// configured inference algorithm, and consolidation.
func (e *Engine) Answer(q Query) (*Result, error) {
	res := &Result{}
	tables, usedProbe2, err := e.Candidates(q, &res.Timings)
	if err != nil {
		return nil, err
	}
	res.Tables = tables
	res.UsedProbe2 = usedProbe2

	start := time.Now()
	m := e.builder().Build(q.Columns, tables)
	res.Model = m
	res.Labeling = inference.Solve(m, e.Opts.Algorithm)
	res.Timings.ColumnMap = time.Since(start)

	start = time.Now()
	res.Answer = consolidate.Consolidate(len(q.Columns), tables, res.Labeling, m.Conf, m.Rel, e.Opts.Consolidate)
	res.Timings.Consolidate = time.Since(start)
	return res, nil
}

// MapColumns runs only the column-mapping stage over caller-supplied
// candidates — the §3 task in isolation, used by the experiments. The
// engine's table-view cache retains every table passed here (and its
// analyzed view) for the engine's lifetime; callers streaming an unbounded
// sequence of fresh tables through a long-lived engine should construct a
// fresh engine per batch.
func (e *Engine) MapColumns(q Query, tables []*wtable.Table) (*core.Model, core.Labeling) {
	m := e.builder().Build(q.Columns, tables)
	return m, inference.Solve(m, e.Opts.Algorithm)
}
