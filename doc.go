// Package wwt is the public API of this reproduction of "Answering Table
// Queries on the Web using Column Keywords" (Pimplikar & Sarawagi, VLDB
// 2012). It wires the full WWT pipeline of Fig. 2: a boosted multi-field
// index over extracted web tables, the two-stage index probe of §2.2.1,
// the graphical-model column mapper of §3 with the inference algorithms of
// §4, and the consolidator/ranker of §2.2.3.
//
// # Pipeline
//
// The query path is an explicit staged pipeline —
//
//	Probe1 → Read1 → Probe2 → Read2 → ColumnMap → Infer → Consolidate
//
// (see pipeline.go) — where every stage is a named method fed by a pooled
// per-query scratch arena (QueryScratch), so the flat buffers behind
// probing, model building, inference and consolidation are reused across
// queries instead of reallocated. Candidates runs the probe prefix of the
// same list; Answer runs the whole list.
//
// # Ownership and concurrency
//
// An Engine is immutable after construction and safe for concurrent use:
// any number of goroutines may call Answer, AnswerBatch, Candidates,
// CandidatesBatch and MapColumns on one engine. The cross-query caches
// (table views, pair similarities, PMI doc sets, normalized cells) are
// concurrency-safe and hand out shared read-only slices.
//
// Exactly one query owns a scratch arena at a time. Candidates returns
// its arena to the pool on exit; Answer hands it to the Result — whose
// Model aliases the arena's grids — and only Result.Release recycles it.
// Everything else a query returns (answer rows, labeling, tables) owns
// its storage and survives Release, so an unreleased arena is merely
// garbage, never a corruption hazard.
//
// # Batched execution
//
// AnswerBatch and CandidatesBatch run many queries through the same stage
// list on a bounded worker pool. Each worker holds one pooled arena at a
// time, all workers share the engine's warm caches, and every member's
// output is bit-identical to a solo call. Members are error-isolated: one
// failing query fills only its own error slot. BatchTimings aggregates
// the per-stage split and wall clock; serving loops and the evaluation
// harness (internal/eval) are built on these entry points.
//
// # Deadlines and cancellation
//
// AnswerCtx and AnswerBatchCtx run the same pipeline under a context:
// cancellation is checked between stages, an expired or canceled query
// returns ctx.Err() (in its own batch slot, leaving the other members
// untouched), and the aborted query's arena goes back to the pool clean.
// AnswerBatchCtx additionally gives every member its own deadline. The
// serving daemon (internal/serve, cmd/wwt-serve) builds its per-query
// latency budgets, admission control and /metrics on these entry points
// plus Engine.CacheStats.
//
// # Typical use
//
//	tables := extract.Page(url, html, extract.NewOptions())   // offline
//	eng, err := wwt.NewEngine(tables, nil)                    // index + store
//	res, err := eng.Answer(wwt.Query{Columns: []string{
//	    "name of explorers", "nationality", "areas explored"}})
//	for _, row := range res.Answer.Rows { ... }
//	res.Release() // optional: recycle the per-query arena
//
// See the runnable examples in example_test.go and the README for the
// architecture diagram and cache contracts.
package wwt
