package wwt_test

// Adaptive-planner integration tests: the planner-off path must stay
// bit-identical to the pre-planner pipeline for every inference
// algorithm, scheduling must only reorder dispatch (never outputs),
// probe-2 elision must never change a consolidated answer on the eval
// corpus, and deadline degradation must downgrade — deterministically —
// instead of failing.

import (
	"context"
	"reflect"
	"strings"
	"testing"
	"time"

	"wwt"
	"wwt/internal/corpusgen"
	"wwt/internal/extract"
	"wwt/internal/inference"
	"wwt/internal/plan"
	"wwt/internal/workload"
)

// evalQueries builds the deterministic evaluation corpus and its query
// workload.
func evalQueries(t *testing.T) ([]wwt.Query, *corpusgen.Corpus) {
	t.Helper()
	corpus := corpusgen.Generate(corpusgen.Config{Seed: 2012, Scale: 0.25})
	queries := workload.FromCorpus(corpus)
	if len(queries) == 0 {
		t.Fatal("no workload queries")
	}
	wqs := make([]wwt.Query, len(queries))
	for i, q := range queries {
		wqs[i] = wwt.Query{Columns: q.Columns}
	}
	return wqs, corpus
}

// sameResult fails the test unless two member results are bit-identical
// in everything a caller can observe.
func sameResult(t *testing.T, tag string, i int, got, want *wwt.Result) {
	t.Helper()
	if got.UsedProbe2 != want.UsedProbe2 {
		t.Fatalf("%s member %d: UsedProbe2 %v != %v", tag, i, got.UsedProbe2, want.UsedProbe2)
	}
	if len(got.Tables) != len(want.Tables) {
		t.Fatalf("%s member %d: %d tables != %d", tag, i, len(got.Tables), len(want.Tables))
	}
	for ti := range got.Tables {
		if got.Tables[ti].ID != want.Tables[ti].ID {
			t.Fatalf("%s member %d: table %d = %s, want %s", tag, i, ti, got.Tables[ti].ID, want.Tables[ti].ID)
		}
	}
	if !reflect.DeepEqual(got.Labeling.Y, want.Labeling.Y) {
		t.Fatalf("%s member %d: labeling diverged", tag, i)
	}
	if !reflect.DeepEqual(got.Model.Edges, want.Model.Edges) {
		t.Fatalf("%s member %d: model edges diverged", tag, i)
	}
	if !reflect.DeepEqual(got.Model.Node, want.Model.Node) {
		t.Fatalf("%s member %d: node potentials diverged", tag, i)
	}
	if !reflect.DeepEqual(got.Answer, want.Answer) {
		t.Fatalf("%s member %d: consolidated answer diverged", tag, i)
	}
}

// TestPlannerOffBitIdentical pins the planner-disabled path: with the
// zero PlannerOptions (every lever off), answers for the whole eval
// workload are bit-identical to solo references for all five inference
// algorithms, no lever ever fires, and calibration — which always runs —
// stays observability-only.
func TestPlannerOffBitIdentical(t *testing.T) {
	wqs, corpus := evalQueries(t)
	tables := corpus.ExtractAll(extract.NewOptions())
	for _, alg := range inference.Algorithms {
		t.Run(alg.String(), func(t *testing.T) {
			opts := wwt.DefaultOptions()
			opts.Algorithm = alg
			if (opts.Planner != wwt.PlannerOptions{}) {
				t.Fatal("default options must leave every planner lever off")
			}
			eng, err := wwt.NewEngine(tables, &opts)
			if err != nil {
				t.Fatal(err)
			}
			refs := make([]*wwt.Result, len(wqs))
			refErrs := make([]error, len(wqs))
			for i, q := range wqs {
				refs[i], refErrs[i] = eng.Answer(q)
			}
			// By now the estimator has observed every solo query; the
			// planner being calibrated must still change nothing.
			br := eng.AnswerBatchPlan(context.Background(), wqs, 4, time.Hour, wwt.BatchPlan{})
			for i := range wqs {
				if (br.Errs[i] == nil) != (refErrs[i] == nil) {
					t.Fatalf("member %d: batch err %v, solo err %v", i, br.Errs[i], refErrs[i])
				}
				if br.Errs[i] != nil {
					continue
				}
				if br.Results[i].Probe2Elided || br.Results[i].Degraded {
					t.Fatalf("member %d: lever fired with planner off: %+v", i, br.Results[i])
				}
				sameResult(t, "planner-off", i, br.Results[i], refs[i])
			}
			ps := eng.PlanStats()
			if ps.Probe2Elided != 0 || ps.Degraded != 0 {
				t.Fatalf("planner-off lever counters moved: %+v", ps)
			}
			if !ps.Calibrated {
				t.Fatal("estimator not calibrated after a full workload")
			}
			br.Release()
		})
	}
}

// TestAnswerBatchSchedulingEquivalence pins planner lever (c): under SJF
// and deadline scheduling — with a warm, calibrated estimator actually
// permuting dispatch — every member lands in its submission-order output
// slot bit-identical to its solo reference, with and without a per-member
// deadline, and per-member latencies are recorded.
func TestAnswerBatchSchedulingEquivalence(t *testing.T) {
	wqs, corpus := evalQueries(t)
	eng, err := wwt.NewEngine(corpus.ExtractAll(extract.NewOptions()), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Calibration warmup plus solo references in one pass.
	refs := make([]*wwt.Result, len(wqs))
	refErrs := make([]error, len(wqs))
	for i, q := range wqs {
		refs[i], refErrs[i] = eng.Answer(q)
	}
	if est := eng.EstimateCost(wqs[0]); est <= 0 {
		t.Fatalf("EstimateCost = %v after calibration, want > 0", est)
	}
	for _, sched := range []wwt.Schedule{wwt.ScheduleSJF, wwt.ScheduleDeadline} {
		for _, perQuery := range []time.Duration{0, time.Hour} {
			br := eng.AnswerBatchPlan(context.Background(), wqs, 4, perQuery,
				wwt.BatchPlan{Schedule: sched})
			tag := sched.String()
			if len(br.Latency) != len(wqs) {
				t.Fatalf("%s: Latency has %d entries, want %d", tag, len(br.Latency), len(wqs))
			}
			for i := range wqs {
				if (br.Errs[i] == nil) != (refErrs[i] == nil) {
					t.Fatalf("%s member %d: batch err %v, solo err %v", tag, i, br.Errs[i], refErrs[i])
				}
				if br.Latency[i] <= 0 {
					t.Fatalf("%s member %d: latency not recorded", tag, i)
				}
				if br.Errs[i] != nil {
					continue
				}
				sameResult(t, tag, i, br.Results[i], refs[i])
			}
			br.Release()
		}
	}
}

// TestPlannerElisionNoAnswerChange pins planner lever (a)'s two safety
// contracts on the eval corpus. At the default threshold — deliberately
// above the stage-1 softmax confidence ceiling — any query that elides
// must keep a bit-identical consolidated answer. At a lowered threshold,
// where elision actually fires, the weaker invariant holds: an elided
// answer never contains a row the full two-probe pipeline would not
// produce (elision can only drop rows contributed exclusively by
// second-probe tables, never invent them).
func TestPlannerElisionNoAnswerChange(t *testing.T) {
	wqs, corpus := evalQueries(t)
	tables := corpus.ExtractAll(extract.NewOptions())
	ref, err := wwt.NewEngine(tables, nil)
	if err != nil {
		t.Fatal(err)
	}
	refs := make([]*wwt.Result, len(wqs))
	refErrs := make([]error, len(wqs))
	for i, q := range wqs {
		refs[i], refErrs[i] = ref.Answer(q)
	}

	// Default threshold: elision is answer-preserving wherever it fires.
	opts := wwt.DefaultOptions()
	opts.Planner.ElideProbe2 = true
	eng, err := wwt.NewEngine(tables, &opts)
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range wqs {
		got, gotErr := eng.Answer(q)
		if (gotErr == nil) != (refErrs[i] == nil) {
			t.Fatalf("query %d: elision err %v, reference err %v", i, gotErr, refErrs[i])
		}
		if gotErr != nil {
			continue
		}
		if got.Probe2Elided {
			if !reflect.DeepEqual(got.Answer, refs[i].Answer) {
				t.Fatalf("query %d %v: default-threshold elision changed the answer", i, q.Columns)
			}
		} else {
			sameResult(t, "no-elision", i, got, refs[i])
		}
		got.Release()
	}

	// Lowered threshold: elision fires, is counted, and never invents rows.
	low := wwt.DefaultOptions()
	low.Planner.ElideProbe2 = true
	low.Planner.ElideConfidence = 0.9
	leng, err := wwt.NewEngine(tables, &low)
	if err != nil {
		t.Fatal(err)
	}
	elided := 0
	for i, q := range wqs {
		if refErrs[i] != nil {
			continue
		}
		got, gotErr := leng.Answer(q)
		if gotErr != nil {
			t.Fatalf("query %d: %v", i, gotErr)
		}
		if got.Probe2Elided {
			elided++
			refRows := make(map[string]bool, len(refs[i].Answer.Rows))
			for _, row := range refs[i].Answer.Rows {
				refRows[strings.Join(row.Cells, "\x00")] = true
			}
			for _, row := range got.Answer.Rows {
				if !refRows[strings.Join(row.Cells, "\x00")] {
					t.Fatalf("query %d %v: elided answer invented row %v", i, q.Columns, row.Cells)
				}
			}
		}
		got.Release()
	}
	if elided == 0 {
		t.Fatal("probe-2 elision never fired at the lowered threshold")
	}
	if ps := leng.PlanStats(); ps.Probe2Elided != uint64(elided) {
		t.Fatalf("PlanStats.Probe2Elided = %d, want %d", ps.Probe2Elided, elided)
	}
}

// TestDeadlineDegradation pins planner lever (b): with the estimator
// seeded so any deadline looks unmeetable, a query degrades — downgraded
// inference, capped candidates — instead of returning DeadlineExceeded,
// and the degraded answer is bit-identical to the downgraded algorithm
// run directly.
func TestDeadlineDegradation(t *testing.T) {
	wqs, corpus := evalQueries(t)
	tables := corpus.ExtractAll(extract.NewOptions())

	opts := wwt.DefaultOptions()
	opts.Planner.DeadlineDegrade = true
	opts.Planner.DegradeMaxTables = 1 << 30 // no capping: isolate the algorithm downgrade
	eng, err := wwt.NewEngine(tables, &opts)
	if err != nil {
		t.Fatal(err)
	}
	// Seed the estimator so the tail estimate dwarfs any realistic
	// deadline: one synthetic observation of an hour per stage per unit.
	eng.Planner().Observe(plan.Sample{
		Postings: 1, Tables1: 1, Tables: 1, Alg: int(opts.Algorithm), Probe2Ran: true,
		Probe1: time.Hour, Read1: time.Hour, Probe2: time.Hour, Read2: time.Hour,
		Build: time.Hour, Infer: time.Hour, Cons: time.Hour,
	})

	downOpts := wwt.DefaultOptions()
	downOpts.Algorithm = inference.Degrade(opts.Algorithm)
	down, err := wwt.NewEngine(tables, &downOpts)
	if err != nil {
		t.Fatal(err)
	}

	degraded := 0
	for i, q := range wqs {
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		res, resErr := eng.AnswerCtx(ctx, q)
		cancel()
		want, refErr := down.Answer(q)
		if (resErr == nil) != (refErr == nil) {
			t.Fatalf("query %d: degraded err %v, reference err %v", i, resErr, refErr)
		}
		if resErr != nil {
			continue
		}
		if !res.Degraded {
			// A query with no candidate tables has a zero tail estimate —
			// nothing to degrade — and that is correct, not a lever failure.
			if len(res.Tables) > 0 {
				t.Fatalf("query %d: not degraded under an unmeetable estimate", i)
			}
			res.Release()
			want.Release()
			continue
		}
		degraded++
		if !reflect.DeepEqual(res.Labeling.Y, want.Labeling.Y) {
			t.Fatalf("query %d: degraded labeling != %v solo labeling", i, downOpts.Algorithm)
		}
		if !reflect.DeepEqual(res.Answer, want.Answer) {
			t.Fatalf("query %d: degraded answer != %v solo answer", i, downOpts.Algorithm)
		}
		res.Release()
		want.Release()
	}
	if degraded == 0 {
		t.Fatal("no query degraded")
	}
	if ps := eng.PlanStats(); ps.Degraded != uint64(degraded) {
		t.Fatalf("PlanStats.Degraded = %d, want %d", ps.Degraded, degraded)
	}
}
